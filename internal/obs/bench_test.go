package obs

import "testing"

// The nil-tracer benchmarks pin the cost instrumented hot paths pay when
// Config.Obs is off; the end-to-end budget (< 2% on BenchmarkILP) rides on
// these staying in the low-nanosecond range with zero allocations.

func BenchmarkSpanNilTracer(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Span("net/candidates", LaneFlow)
		sp.End()
	}
}

func BenchmarkCounterNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	tr := New(Nop{})
	c := tr.Counter("lp.pivots")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramRecordNil(b *testing.B) {
	var tr *Tracer
	h := tr.Histogram("request/e2e")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i))
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	tr := New(Nop{})
	h := tr.Histogram("request/e2e")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i) * 1000)
	}
}

func BenchmarkSpanCollector(b *testing.B) {
	tr := New(&Collector{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Span("net/candidates", WorkerLane(0), I("net", i))
		sp.End(I("cands", 4))
	}
}
