package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// chromePID is the single "process" all lanes live under.
const chromePID = 1

// chromeEvent is one entry of the Chrome trace-event "JSON Array Format"
// (the format chrome://tracing and Perfetto load directly). Timestamps and
// durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeWriter is the streaming Chrome trace-event Sink: spans become
// complete ("X") events, instant events become "i" events, and the final
// counter snapshot becomes one "C" sample per counter. Lane IDs map to
// trace thread IDs, so the worker-pool fan-out renders as parallel tracks;
// thread-name metadata for every lane seen is emitted at Close, which also
// terminates the JSON array — a trace is loadable only after Close (via
// Tracer.Close).
type ChromeWriter struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	first bool
	lanes map[int]bool
	maxTs time.Duration
	ctrs  []CounterValue
	err   error
}

// NewChromeWriter returns a ChromeWriter streaming to w. The caller owns w
// and closes it (if applicable) after Tracer.Close.
func NewChromeWriter(w io.Writer) *ChromeWriter {
	return &ChromeWriter{bw: bufio.NewWriter(w), first: true, lanes: map[int]bool{}}
}

// emit appends one event to the JSON array. Callers hold c.mu.
func (c *ChromeWriter) emit(ev chromeEvent) {
	if c.err != nil {
		return
	}
	sep := ",\n"
	if c.first {
		sep = "[\n"
		c.first = false
	}
	if _, err := c.bw.WriteString(sep); err != nil {
		c.err = err
		return
	}
	buf, err := json.Marshal(ev)
	if err != nil {
		c.err = err
		return
	}
	if _, err := c.bw.Write(buf); err != nil {
		c.err = err
	}
}

// micros converts a tracer offset to trace microseconds.
func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// argsOf renders an attribute list as trace args (nil when empty).
func argsOf(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	args := make(map[string]any, len(attrs))
	for _, a := range attrs {
		if a.IsNum {
			args[a.Key] = a.Num
		} else {
			args[a.Key] = a.Str
		}
	}
	return args
}

// Span implements Sink.
func (c *ChromeWriter) Span(s SpanRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lanes[s.Lane] = true
	if end := s.Start + s.Dur; end > c.maxTs {
		c.maxTs = end
	}
	dur := micros(s.Dur)
	c.emit(chromeEvent{
		Name: s.Name, Ph: "X", Ts: micros(s.Start), Dur: &dur,
		Pid: chromePID, Tid: s.Lane, Args: argsOf(s.Attrs),
	})
}

// Event implements Sink.
func (c *ChromeWriter) Event(e EventRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lanes[e.Lane] = true
	if e.Ts > c.maxTs {
		c.maxTs = e.Ts
	}
	c.emit(chromeEvent{
		Name: e.Name, Ph: "i", Ts: micros(e.Ts),
		Pid: chromePID, Tid: e.Lane, S: "t", Args: argsOf(e.Attrs),
	})
}

// Counters implements Sink: the snapshot is held until Close so the counter
// samples land at the trace's end timestamp.
func (c *ChromeWriter) Counters(cs []CounterValue) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ctrs = append([]CounterValue(nil), cs...)
}

// Close writes the counter samples, the process/thread metadata for every
// lane seen, and the array terminator, then flushes. The writer is unusable
// afterwards.
func (c *ChromeWriter) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cv := range c.ctrs {
		c.emit(chromeEvent{
			Name: cv.Name, Ph: "C", Ts: micros(c.maxTs),
			Pid: chromePID, Tid: LaneFlow, Args: map[string]any{"value": cv.Value},
		})
	}
	c.emit(chromeEvent{
		Name: "process_name", Ph: "M", Pid: chromePID, Tid: LaneFlow,
		Args: map[string]any{"name": "operon"},
	})
	lanes := make([]int, 0, len(c.lanes))
	for l := range c.lanes {
		lanes = append(lanes, l)
	}
	for i := 1; i < len(lanes); i++ {
		for j := i; j > 0 && lanes[j] < lanes[j-1]; j-- {
			lanes[j], lanes[j-1] = lanes[j-1], lanes[j]
		}
	}
	for _, l := range lanes {
		c.emit(chromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePID, Tid: l,
			Args: map[string]any{"name": LaneName(l)},
		})
	}
	if c.err == nil {
		if c.first { // nothing was ever emitted: still produce a valid array
			_, c.err = c.bw.WriteString("[")
			c.first = false
		}
		if c.err == nil {
			_, c.err = c.bw.WriteString("\n]\n")
		}
	}
	if err := c.bw.Flush(); err != nil && c.err == nil {
		c.err = err
	}
	return c.err
}
