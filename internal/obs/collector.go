package obs

import (
	"sync"
	"time"
)

// Collector is the in-memory Sink: it retains every span, event, and the
// final counter snapshot for post-run queries (tests, Result inspection,
// the -v summary of cmd/operon). Safe for concurrent use.
type Collector struct {
	mu       sync.Mutex
	spans    []SpanRecord
	events   []EventRecord
	counters []CounterValue
}

// Span implements Sink.
func (c *Collector) Span(s SpanRecord) {
	c.mu.Lock()
	c.spans = append(c.spans, s)
	c.mu.Unlock()
}

// Event implements Sink.
func (c *Collector) Event(e EventRecord) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Counters implements Sink.
func (c *Collector) Counters(cs []CounterValue) {
	c.mu.Lock()
	c.counters = append([]CounterValue(nil), cs...)
	c.mu.Unlock()
}

// Spans returns a copy of the recorded spans in completion order.
func (c *Collector) Spans() []SpanRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]SpanRecord(nil), c.spans...)
}

// Events returns a copy of the recorded events in emission order.
func (c *Collector) Events() []EventRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]EventRecord(nil), c.events...)
}

// CounterValues returns the snapshot flushed at tracer close (nil before).
func (c *Collector) CounterValues() []CounterValue {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]CounterValue(nil), c.counters...)
}

// SpansNamed returns the recorded spans with the given name.
func (c *Collector) SpansNamed(name string) []SpanRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []SpanRecord
	for _, s := range c.spans {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// EventsNamed returns the recorded events with the given name.
func (c *Collector) EventsNamed(name string) []EventRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []EventRecord
	for _, e := range c.events {
		if e.Name == name {
			out = append(out, e)
		}
	}
	return out
}

// TotalDur sums the durations of every span with the given name.
func (c *Collector) TotalDur(name string) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total time.Duration
	for _, s := range c.spans {
		if s.Name == name {
			total += s.Dur
		}
	}
	return total
}

// Lanes returns the distinct lane IDs seen across spans, ascending.
func (c *Collector) Lanes() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := map[int]bool{}
	for _, s := range c.spans {
		seen[s.Lane] = true
	}
	out := make([]int, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	for i := 1; i < len(out); i++ { // insertion sort; lane sets are tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
