// Package cluster implements the two clustering strategies of OPERON's
// signal-processing stage (paper §3.1): a capacity-constrained K-Means used
// top-down to partition a signal group's bits into hyper nets, and a
// bottom-up agglomerative clustering used to merge neighbouring electrical
// pins into hyper pins.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"operon/internal/geom"
)

// KMeansConfig controls the capacity-constrained K-Means of §3.1.1.
type KMeansConfig struct {
	// Capacity is the maximum number of members per cluster (the WDM
	// channel capacity). Must be positive.
	Capacity int
	// MaxIters bounds the Lloyd iterations. Defaults to 50 when zero.
	MaxIters int
	// VarianceThreshold stops the iteration when the relative decrease of
	// the within-cluster distance variance falls below it. Defaults to 1e-3
	// when zero.
	VarianceThreshold float64
	// Seed makes centre initialisation deterministic.
	Seed int64
}

// KMeans partitions pts into capacity-respecting clusters and returns the
// member indices of each non-empty cluster. K is chosen as ⌈n/Capacity⌉, so
// K clusters are always adequate for all the points; per the paper, empty
// clusters that remain after convergence are removed.
func KMeans(pts []geom.Point, cfg KMeansConfig) ([][]int, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("cluster: capacity %d must be positive", cfg.Capacity)
	}
	n := len(pts)
	if n == 0 {
		return nil, nil
	}
	k := (n + cfg.Capacity - 1) / cfg.Capacity
	if k == 1 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return [][]int{all}, nil
	}
	maxIters := cfg.MaxIters
	if maxIters == 0 {
		maxIters = 50
	}
	varThresh := cfg.VarianceThreshold
	if varThresh == 0 {
		varThresh = 1e-3
	}

	centres := initialCentres(pts, k, cfg.Seed)
	assign := make([]int, n)
	prevVar := math.Inf(1)

	for iter := 0; iter < maxIters; iter++ {
		assignCapacitated(pts, centres, cfg.Capacity, assign)
		updateCentres(pts, assign, centres)

		v := withinVariance(pts, assign, centres)
		if prevVar < math.Inf(1) && prevVar > 0 {
			if (prevVar-v)/prevVar < varThresh {
				break
			}
		}
		prevVar = v
	}

	clusters := make([][]int, k)
	for i, c := range assign {
		clusters[c] = append(clusters[c], i)
	}
	// Remove empty clusters (paper: "There may be a few empty clusters
	// without any assigned bits, which will be removed afterward").
	out := clusters[:0]
	for _, c := range clusters {
		if len(c) > 0 {
			out = append(out, c)
		}
	}
	return out, nil
}

// initialCentres picks k distinct seeds using a farthest-point heuristic
// from a deterministic random start, which spreads the centres and keeps
// the capacitated assignment stable.
func initialCentres(pts []geom.Point, k int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed + 1))
	centres := make([]geom.Point, 0, k)
	centres = append(centres, pts[rng.Intn(len(pts))])
	minDist := make([]float64, len(pts))
	for i, p := range pts {
		minDist[i] = p.Dist(centres[0])
	}
	for len(centres) < k {
		best, bestD := 0, -1.0
		for i, d := range minDist {
			if d > bestD {
				best, bestD = i, d
			}
		}
		c := pts[best]
		if bestD <= 0 {
			// All points coincide with existing centres; jitter
			// deterministically so that k centres still exist.
			c = geom.Point{X: c.X + float64(len(centres))*1e-12, Y: c.Y}
		}
		centres = append(centres, c)
		for i, p := range pts {
			if d := p.Dist(c); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	return centres
}

// assignCapacitated performs the paper's extended assignment step: each
// point goes to its closest centre, and when a cluster exceeds the capacity
// the farthest excess members spill to their second-closest centre, and so
// on. The pass over points is ordered by assignment cost so the spill is
// deterministic.
func assignCapacitated(pts []geom.Point, centres []geom.Point, capacity int, assign []int) {
	k := len(centres)
	type cand struct {
		point int
		order []int // centre indices sorted by distance
	}
	cands := make([]cand, len(pts))
	for i, p := range pts {
		order := make([]int, k)
		for j := range order {
			order[j] = j
		}
		sort.Slice(order, func(a, b int) bool {
			da, db := p.Dist(centres[order[a]]), p.Dist(centres[order[b]])
			if da != db {
				return da < db
			}
			return order[a] < order[b]
		})
		cands[i] = cand{point: i, order: order}
	}
	// Assign points in order of their distance to their closest centre so
	// that near points claim capacity first.
	sort.SliceStable(cands, func(a, b int) bool {
		pa, pb := cands[a], cands[b]
		return pts[pa.point].Dist(centres[pa.order[0]]) < pts[pb.point].Dist(centres[pb.order[0]])
	})
	load := make([]int, k)
	for _, c := range cands {
		placed := false
		for _, ci := range c.order {
			if load[ci] < capacity {
				assign[c.point] = ci
				load[ci]++
				placed = true
				break
			}
		}
		if !placed {
			// Unreachable: k·capacity >= n by construction of k.
			assign[c.point] = c.order[0]
			load[c.order[0]]++
		}
	}
}

func updateCentres(pts []geom.Point, assign []int, centres []geom.Point) {
	k := len(centres)
	sums := make([]geom.Point, k)
	counts := make([]int, k)
	for i, c := range assign {
		sums[c] = sums[c].Add(pts[i])
		counts[c]++
	}
	for c := 0; c < k; c++ {
		if counts[c] > 0 {
			centres[c] = sums[c].Scale(1 / float64(counts[c]))
		}
	}
}

func withinVariance(pts []geom.Point, assign []int, centres []geom.Point) float64 {
	var sum float64
	for i, c := range assign {
		d := pts[i].Dist(centres[c])
		sum += d * d
	}
	return sum / float64(len(pts))
}
