package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"operon/internal/geom"
)

func randPoints(n int, seed int64, spread float64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * spread, Y: rng.Float64() * spread}
	}
	return pts
}

func TestKMeansRejectsBadCapacity(t *testing.T) {
	if _, err := KMeans(randPoints(4, 1, 1), KMeansConfig{Capacity: 0}); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	if _, err := KMeans(randPoints(4, 1, 1), KMeansConfig{Capacity: -3}); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestKMeansEmpty(t *testing.T) {
	got, err := KMeans(nil, KMeansConfig{Capacity: 4})
	if err != nil || got != nil {
		t.Fatalf("empty input: got %v, %v", got, err)
	}
}

func TestKMeansSingleCluster(t *testing.T) {
	pts := randPoints(5, 2, 1)
	clusters, err := KMeans(pts, KMeansConfig{Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 || len(clusters[0]) != 5 {
		t.Fatalf("want one cluster of 5, got %v", clusters)
	}
}

// checkPartition verifies that clusters form an exact partition of 0..n-1.
func checkPartition(t *testing.T, clusters [][]int, n int) {
	t.Helper()
	seen := make([]bool, n)
	total := 0
	for _, c := range clusters {
		if len(c) == 0 {
			t.Fatal("empty cluster not removed")
		}
		for _, i := range c {
			if i < 0 || i >= n {
				t.Fatalf("index %d out of range", i)
			}
			if seen[i] {
				t.Fatalf("index %d appears twice", i)
			}
			seen[i] = true
			total++
		}
	}
	if total != n {
		t.Fatalf("partition covers %d of %d points", total, n)
	}
}

func TestKMeansCapacityInvariant(t *testing.T) {
	for _, n := range []int{1, 7, 31, 32, 33, 100, 257} {
		for _, capac := range []int{1, 3, 32} {
			pts := randPoints(n, int64(n*100+capac), 10)
			clusters, err := KMeans(pts, KMeansConfig{Capacity: capac, Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			checkPartition(t, clusters, n)
			for _, c := range clusters {
				if len(c) > capac {
					t.Fatalf("n=%d cap=%d: cluster size %d exceeds capacity", n, capac, len(c))
				}
			}
		}
	}
}

func TestKMeansCapacityProperty(t *testing.T) {
	f := func(nn uint8, cc uint8, seed int64) bool {
		n := int(nn)%120 + 1
		capac := int(cc)%40 + 1
		pts := randPoints(n, seed, 5)
		clusters, err := KMeans(pts, KMeansConfig{Capacity: capac, Seed: seed})
		if err != nil {
			return false
		}
		count := 0
		for _, c := range clusters {
			if len(c) > capac || len(c) == 0 {
				return false
			}
			count += len(c)
		}
		return count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestKMeansSeparatesDistantBlobs(t *testing.T) {
	// Two tight blobs far apart, 8 points each, capacity 8: the two
	// clusters should coincide with the blobs.
	var pts []geom.Point
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 8; i++ {
		pts = append(pts, geom.Point{X: rng.Float64() * 0.1, Y: rng.Float64() * 0.1})
	}
	for i := 0; i < 8; i++ {
		pts = append(pts, geom.Point{X: 50 + rng.Float64()*0.1, Y: 50 + rng.Float64()*0.1})
	}
	clusters, err := KMeans(pts, KMeansConfig{Capacity: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 2 {
		t.Fatalf("want 2 clusters, got %d", len(clusters))
	}
	for _, c := range clusters {
		low, high := 0, 0
		for _, i := range c {
			if i < 8 {
				low++
			} else {
				high++
			}
		}
		if low != 0 && high != 0 {
			t.Fatalf("cluster mixes blobs: %v", c)
		}
	}
}

func TestKMeansCoincidentPoints(t *testing.T) {
	// All points identical: clustering must still satisfy capacity.
	pts := make([]geom.Point, 10)
	clusters, err := KMeans(pts, KMeansConfig{Capacity: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, clusters, 10)
	for _, c := range clusters {
		if len(c) > 3 {
			t.Fatalf("coincident points: cluster size %d > 3", len(c))
		}
	}
}

func TestKMeansDeterministic(t *testing.T) {
	pts := randPoints(64, 11, 10)
	a, _ := KMeans(pts, KMeansConfig{Capacity: 10, Seed: 5})
	b, _ := KMeans(pts, KMeansConfig{Capacity: 10, Seed: 5})
	if len(a) != len(b) {
		t.Fatalf("nondeterministic cluster count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("nondeterministic cluster %d", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("nondeterministic member a[%d][%d]", i, j)
			}
		}
	}
}

func TestAgglomerateEmptyAndSingle(t *testing.T) {
	if got := Agglomerate(nil, 1); got != nil {
		t.Errorf("empty: %v", got)
	}
	got := Agglomerate([]geom.Point{{X: 1, Y: 1}}, 1)
	if len(got) != 1 || len(got[0]) != 1 {
		t.Errorf("single: %v", got)
	}
}

func TestAgglomerateZeroThreshold(t *testing.T) {
	pts := randPoints(10, 5, 1)
	got := Agglomerate(pts, 0)
	if len(got) != 10 {
		t.Fatalf("threshold 0: want 10 singleton clusters, got %d", len(got))
	}
}

func TestAgglomerateMergesNeighbours(t *testing.T) {
	pts := []geom.Point{
		{X: 0, Y: 0}, {X: 0.1, Y: 0}, {X: 0.05, Y: 0.1}, // blob A
		{X: 10, Y: 10}, {X: 10.1, Y: 10}, // blob B
		{X: -20, Y: 5}, // isolated
	}
	got := Agglomerate(pts, 1.0)
	if len(got) != 3 {
		t.Fatalf("want 3 clusters, got %d: %v", len(got), got)
	}
	sizes := map[int]int{}
	for _, c := range got {
		sizes[len(c)]++
	}
	if sizes[3] != 1 || sizes[2] != 1 || sizes[1] != 1 {
		t.Fatalf("cluster sizes wrong: %v", got)
	}
}

func TestAgglomeratePartitionProperty(t *testing.T) {
	f := func(nn uint8, th float64, seed int64) bool {
		n := int(nn)%60 + 1
		threshold := math.Abs(math.Mod(th, 5))
		pts := randPoints(n, seed, 10)
		clusters := Agglomerate(pts, threshold)
		seen := make([]bool, n)
		count := 0
		for _, c := range clusters {
			for _, i := range c {
				if seen[i] {
					return false
				}
				seen[i] = true
				count++
			}
		}
		return count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestAgglomerateChainStops(t *testing.T) {
	// A long chain of points spaced 0.9 apart with threshold 1.0: merging
	// moves gravity centres, so chaining may stop early, but every adjacent
	// pair closer than threshold when both are singletons must at least be
	// considered. We only assert no cluster pair of *final* centres violates
	// an obvious invariant: centres of distinct clusters are >= some margin.
	var pts []geom.Point
	for i := 0; i < 12; i++ {
		pts = append(pts, geom.Point{X: float64(i) * 0.9, Y: 0})
	}
	clusters := Agglomerate(pts, 1.0)
	// The chain must collapse into far fewer clusters than points.
	if len(clusters) >= 12 {
		t.Fatalf("chain did not merge at all: %d clusters", len(clusters))
	}
	checkPartition(t, clusters, 12)
}

func TestCentres(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 10, Y: 10}}
	clusters := [][]int{{0, 1}, {2}}
	cs := Centres(pts, clusters)
	if !cs[0].Eq(geom.Point{X: 1, Y: 0}) || !cs[1].Eq(geom.Point{X: 10, Y: 10}) {
		t.Fatalf("Centres = %v", cs)
	}
}
