package cluster

import (
	"sort"

	"operon/internal/geom"
)

// Agglomerate performs the bottom-up hyper-pin clustering of §3.1.2: every
// point starts as its own cluster; at each step the pair of clusters whose
// gravity centres are closest is merged, provided their centre distance is
// below threshold; merging updates the gravity centre. It returns the member
// indices of each final cluster, ordered by the smallest member index.
//
// With a non-positive threshold no merging happens and every point is its
// own cluster.
func Agglomerate(pts []geom.Point, threshold float64) [][]int {
	n := len(pts)
	if n == 0 {
		return nil
	}
	parent := make([]int, n)
	size := make([]int, n)
	centre := make([]geom.Point, n)
	alive := make([]bool, n)
	for i := range parent {
		parent[i] = i
		size[i] = 1
		centre[i] = pts[i]
		alive[i] = true
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	if threshold > 0 && n > 1 {
		pq := newPairQueue(centre)
		for pq.Len() > 0 {
			pr := pq.pop()
			a, b := find(pr.a), find(pr.b)
			if a == b || !alive[a] || !alive[b] {
				continue
			}
			// The queue entry may be stale: centres move as clusters merge.
			d := centre[a].Dist(centre[b])
			if d > pr.d+geom.Eps {
				if d < threshold {
					pq.push(pair{a: a, b: b, d: d})
				}
				continue
			}
			if d >= threshold {
				continue
			}
			// Merge b into a with gravity-centre update.
			tot := size[a] + size[b]
			centre[a] = centre[a].Scale(float64(size[a]) / float64(tot)).
				Add(centre[b].Scale(float64(size[b]) / float64(tot)))
			size[a] = tot
			parent[b] = a
			alive[b] = false
			// New candidate pairs against the merged centre.
			for c := 0; c < n; c++ {
				if c != a && alive[c] {
					if d := centre[a].Dist(centre[c]); d < threshold {
						pq.push(pair{a: a, b: c, d: d})
					}
				}
			}
		}
	}

	groups := map[int][]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return groups[roots[i]][0] < groups[roots[j]][0] })
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}

// Centres returns the gravity centre of each cluster (as produced by
// Agglomerate or KMeans) over the original points.
func Centres(pts []geom.Point, clusters [][]int) []geom.Point {
	out := make([]geom.Point, len(clusters))
	for i, c := range clusters {
		members := make([]geom.Point, len(c))
		for j, idx := range c {
			members[j] = pts[idx]
		}
		out[i] = geom.Centroid(members)
	}
	return out
}

type pair struct {
	a, b int
	d    float64
}

// pairQueue is a hand-rolled binary min-heap on centre distance. It mirrors
// container/heap's sift algorithms exactly (same comparisons, same swaps, so
// the pop order — and with it the clustering — is bit-identical to the
// container/heap version it replaced) while avoiding the interface boxing
// that made every Push/Pop allocate on the signal-processing hot path.
type pairQueue []pair

// Len returns the number of queued candidate pairs.
func (q pairQueue) Len() int { return len(q) }

// push adds a candidate pair and restores the heap order.
func (q *pairQueue) push(p pair) {
	*q = append(*q, p)
	q.up(len(*q) - 1)
}

// pop removes and returns the closest pair.
func (q *pairQueue) pop() pair {
	h := *q
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	q.down(0, n)
	it := (*q)[n]
	*q = (*q)[:n]
	return it
}

// up sifts element j towards the root (container/heap's up).
func (q pairQueue) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !(q[j].d < q[i].d) {
			break
		}
		q[i], q[j] = q[j], q[i]
		j = i
	}
}

// down sifts element i0 towards the leaves within q[:n] (container/heap's
// down).
func (q pairQueue) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && q[j2].d < q[j1].d {
			j = j2
		}
		if !(q[j].d < q[i].d) {
			break
		}
		q[i], q[j] = q[j], q[i]
		i = j
	}
}

// newPairQueue seeds the merge queue with all point pairs. Quadratic seeding
// is acceptable: hyper-pin clustering runs per hyper net on tens of pins.
func newPairQueue(centre []geom.Point) *pairQueue {
	n := len(centre)
	q := make(pairQueue, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			q = append(q, pair{a: i, b: j, d: centre[i].Dist(centre[j])})
		}
	}
	for i := len(q)/2 - 1; i >= 0; i-- {
		q.down(i, len(q))
	}
	return &q
}
