package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestDistances(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if !almostEq(p.Dist(q), 5) {
		t.Errorf("Dist = %v, want 5", p.Dist(q))
	}
	if !almostEq(p.ManhattanDist(q), 7) {
		t.Errorf("ManhattanDist = %v, want 7", p.ManhattanDist(q))
	}
}

func TestManhattanDominatesEuclid(t *testing.T) {
	// Property: Manhattan distance >= Euclidean distance always.
	f := func(ax, ay, bx, by float64) bool {
		a := Point{clampCoord(ax), clampCoord(ay)}
		b := Point{clampCoord(bx), clampCoord(by)}
		return a.ManhattanDist(b) >= a.Dist(b)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Point{clampCoord(ax), clampCoord(ay)}
		b := Point{clampCoord(bx), clampCoord(by)}
		c := Point{clampCoord(cx), clampCoord(cy)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampCoord folds arbitrary quick-generated floats into a sane coordinate
// range so that products do not overflow.
func clampCoord(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 100)
}

func TestCentroid(t *testing.T) {
	pts := []Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}}
	c := Centroid(pts)
	if !c.Eq(Point{1, 1}) {
		t.Errorf("Centroid = %v, want (1,1)", c)
	}
}

func TestCentroidPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Centroid(nil) did not panic")
		}
	}()
	Centroid(nil)
}

func TestSegmentBasics(t *testing.T) {
	s := Segment{Point{0, 0}, Point{3, 4}}
	if !almostEq(s.Length(), 5) {
		t.Errorf("Length = %v", s.Length())
	}
	if !almostEq(s.ManhattanLength(), 7) {
		t.Errorf("ManhattanLength = %v", s.ManhattanLength())
	}
	if !s.Midpoint().Eq(Point{1.5, 2}) {
		t.Errorf("Midpoint = %v", s.Midpoint())
	}
	if !(Segment{Point{0, 0}, Point{2, 1}}).Horizontal() {
		t.Error("flat segment should be horizontal")
	}
	if (Segment{Point{0, 0}, Point{1, 2}}).Horizontal() {
		t.Error("steep segment should be vertical")
	}
}

func TestRectOps(t *testing.T) {
	r := BBoxOf([]Point{{1, 1}, {4, 3}, {2, 5}})
	if r.Lo != (Point{1, 1}) || r.Hi != (Point{4, 5}) {
		t.Fatalf("BBoxOf = %+v", r)
	}
	if !almostEq(r.Width(), 3) || !almostEq(r.Height(), 4) {
		t.Errorf("Width/Height = %v/%v", r.Width(), r.Height())
	}
	if !r.Center().Eq(Point{2.5, 3}) {
		t.Errorf("Center = %v", r.Center())
	}
	if !r.Contains(Point{2, 2}) || r.Contains(Point{0, 0}) {
		t.Error("Contains wrong")
	}
	q := Rect{Point{5, 5}, Point{6, 6}}
	if r.Overlaps(q) {
		t.Error("disjoint rects reported overlapping")
	}
	if !r.Overlaps(Rect{Point{4, 5}, Point{9, 9}}) {
		t.Error("touching rects should overlap")
	}
	u := r.Union(q)
	if u.Lo != (Point{1, 1}) || u.Hi != (Point{6, 6}) {
		t.Errorf("Union = %+v", u)
	}
	e := r.Expand(1)
	if e.Lo != (Point{0, 0}) || e.Hi != (Point{5, 6}) {
		t.Errorf("Expand = %+v", e)
	}
}

func TestProperCrossing(t *testing.T) {
	x := Segment{Point{0, 0}, Point{2, 2}}
	tests := []struct {
		name string
		s    Segment
		want bool
	}{
		{"crossing diagonals", Segment{Point{0, 2}, Point{2, 0}}, true},
		{"disjoint", Segment{Point{3, 3}, Point{4, 4}}, false},
		{"endpoint touch", Segment{Point{2, 2}, Point{3, 0}}, false},
		{"T junction", Segment{Point{1, 1}, Point{1, -3}}, false},
		{"collinear overlap", Segment{Point{1, 1}, Point{3, 3}}, false},
		{"parallel", Segment{Point{0, 1}, Point{2, 3}}, false},
	}
	for _, tc := range tests {
		if got := ProperCrossing(x, tc.s); got != tc.want {
			t.Errorf("%s: ProperCrossing = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestSegmentsIntersectIncludesTouches(t *testing.T) {
	x := Segment{Point{0, 0}, Point{2, 2}}
	if !SegmentsIntersect(x, Segment{Point{2, 2}, Point{3, 0}}) {
		t.Error("endpoint touch should intersect")
	}
	if !SegmentsIntersect(x, Segment{Point{1, 1}, Point{3, 3}}) {
		t.Error("collinear overlap should intersect")
	}
	if SegmentsIntersect(x, Segment{Point{0, 1}, Point{1, 2}}) {
		t.Error("parallel offset should not intersect")
	}
}

func TestProperCrossingSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		s := Segment{randPt(rng), randPt(rng)}
		u := Segment{randPt(rng), randPt(rng)}
		if ProperCrossing(s, u) != ProperCrossing(u, s) {
			t.Fatalf("asymmetric crossing for %v %v", s, u)
		}
		if SegmentsIntersect(s, u) != SegmentsIntersect(u, s) {
			t.Fatalf("asymmetric intersect for %v %v", s, u)
		}
		// A proper crossing implies intersection.
		if ProperCrossing(s, u) && !SegmentsIntersect(s, u) {
			t.Fatalf("proper crossing without intersection: %v %v", s, u)
		}
	}
}

func randPt(rng *rand.Rand) Point {
	return Point{rng.Float64() * 10, rng.Float64() * 10}
}

func TestCountCrossings(t *testing.T) {
	// A grid: 3 horizontal lines and 2 vertical lines that span them
	// properly cross 3*2 = 6 times.
	var hs, vs []Segment
	for i := 0; i < 3; i++ {
		y := float64(i + 1)
		hs = append(hs, Segment{Point{0, y}, Point{10, y}})
	}
	for j := 0; j < 2; j++ {
		x := float64(j + 1)
		vs = append(vs, Segment{Point{x, 0}, Point{x, 10}})
	}
	if got := CountCrossings(hs, vs); got != 6 {
		t.Errorf("CountCrossings = %d, want 6", got)
	}
	if got := CountCrossings(hs, hs); got != 0 {
		t.Errorf("parallel self crossings = %d, want 0", got)
	}
	if got := CrossingsWithSegment(vs[0], hs); got != 3 {
		t.Errorf("CrossingsWithSegment = %d, want 3", got)
	}
}

func TestPointSegmentDist(t *testing.T) {
	s := Segment{Point{0, 0}, Point{10, 0}}
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{5, 3}, 3},
		{Point{-3, 4}, 5},
		{Point{12, 0}, 2},
		{Point{7, 0}, 0},
	}
	for _, c := range cases {
		if got := PointSegmentDist(c.p, s); !almostEq(got, c.want) {
			t.Errorf("PointSegmentDist(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Degenerate segment behaves as a point.
	d := Segment{Point{1, 1}, Point{1, 1}}
	if got := PointSegmentDist(Point{4, 5}, d); !almostEq(got, 5) {
		t.Errorf("degenerate PointSegmentDist = %v, want 5", got)
	}
}

func TestBBoxOverlapPrunesConsistently(t *testing.T) {
	// Property: if two segments properly cross, their bounding boxes overlap,
	// so bbox pruning in CountCrossings never misses a crossing.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		s := Segment{randPt(rng), randPt(rng)}
		u := Segment{randPt(rng), randPt(rng)}
		if ProperCrossing(s, u) && !s.BBox().Overlaps(u.BBox()) {
			t.Fatalf("crossing segments with disjoint bboxes: %v %v", s, u)
		}
	}
}

func TestMergeCollinearChain(t *testing.T) {
	segs := []Segment{
		{Point{0, 0}, Point{1, 0}},
		{Point{1, 0}, Point{2, 0}},
		{Point{2, 0}, Point{3, 0}},
	}
	out := MergeCollinear(segs)
	if len(out) != 1 {
		t.Fatalf("merged = %d segments, want 1: %v", len(out), out)
	}
	if !almostEq(out[0].Length(), 3) {
		t.Errorf("merged length = %v, want 3", out[0].Length())
	}
}

func TestMergeCollinearRespectsBends(t *testing.T) {
	segs := []Segment{
		{Point{0, 0}, Point{1, 0}},
		{Point{1, 0}, Point{1, 1}}, // perpendicular
	}
	if out := MergeCollinear(segs); len(out) != 2 {
		t.Fatalf("bend merged: %v", out)
	}
	// Diagonal chain merges, mixed direction does not.
	segs = []Segment{
		{Point{0, 0}, Point{1, 1}},
		{Point{1, 1}, Point{2, 2}},
		{Point{2, 2}, Point{3, 1}},
	}
	out := MergeCollinear(segs)
	if len(out) != 2 {
		t.Fatalf("diagonal chain: got %d segments, want 2: %v", len(out), out)
	}
}

func TestMergeCollinearFoldBack(t *testing.T) {
	// Two collinear segments folding back over each other share an endpoint
	// but must not merge into a shorter span.
	segs := []Segment{
		{Point{0, 0}, Point{2, 0}},
		{Point{2, 0}, Point{1, 0}},
	}
	if out := MergeCollinear(segs); len(out) != 2 {
		t.Fatalf("fold-back merged: %v", out)
	}
}

func TestMergeCollinearDisjoint(t *testing.T) {
	segs := []Segment{
		{Point{0, 0}, Point{1, 0}},
		{Point{5, 5}, Point{6, 5}},
	}
	if out := MergeCollinear(segs); len(out) != 2 {
		t.Fatalf("disjoint merged: %v", out)
	}
	if out := MergeCollinear(nil); len(out) != 0 {
		t.Fatalf("empty input: %v", out)
	}
}

func TestMergeCollinearPreservesTotalLength(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		// Random monotone chain along a random direction, possibly split.
		n := 2 + rng.Intn(5)
		dx, dy := rng.Float64()+0.1, rng.Float64()-0.5
		var segs []Segment
		p := Point{rng.Float64(), rng.Float64()}
		var total float64
		for i := 0; i < n; i++ {
			step := 0.2 + rng.Float64()
			q := Point{p.X + dx*step, p.Y + dy*step}
			segs = append(segs, Segment{p, q})
			total += p.Dist(q)
			p = q
		}
		out := MergeCollinear(segs)
		if len(out) != 1 {
			t.Fatalf("trial %d: chain did not fully merge: %d", trial, len(out))
		}
		if math.Abs(out[0].Length()-total) > 1e-9 {
			t.Fatalf("trial %d: length %v, want %v", trial, out[0].Length(), total)
		}
	}
}
