// Package geom provides the planar-geometry primitives used throughout the
// OPERON flow: points, segments, bounding boxes, Euclidean and Manhattan
// metrics, and proper-intersection counting between segment sets (the
// substrate of the crossing-loss model).
//
// All coordinates are in centimetres, matching the paper's up-scaled
// benchmark dimensions.
package geom

import (
	"fmt"
	"math"
)

// Eps is the tolerance used for floating-point geometric predicates.
const Eps = 1e-9

// Point is a location on the chip plane, in cm.
type Point struct {
	X, Y float64
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.4f,%.4f)", p.X, p.Y) }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector p − q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dist returns the Euclidean distance to q. Optical waveguides may route in
// any direction, so optical wirelength uses this metric.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// ManhattanDist returns the rectilinear distance to q. Electrical wires are
// Manhattan-routed, so electrical wirelength uses this metric.
func (p Point) ManhattanDist(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// Eq reports whether p and q coincide within Eps.
func (p Point) Eq(q Point) bool {
	return math.Abs(p.X-q.X) <= Eps && math.Abs(p.Y-q.Y) <= Eps
}

// Centroid returns the gravity centre of pts. It panics on an empty slice:
// a cluster with no members has no centre.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		panic("geom: Centroid of empty point set")
	}
	var c Point
	for _, p := range pts {
		c.X += p.X
		c.Y += p.Y
	}
	return c.Scale(1 / float64(len(pts)))
}

// Segment is a straight connection between two points. Optical segments may
// be oblique; electrical segments produced by the rectilinear router are
// axis-aligned.
type Segment struct {
	A, B Point
}

// Length returns the Euclidean length of the segment.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// ManhattanLength returns the rectilinear length of the segment.
func (s Segment) ManhattanLength() float64 { return s.A.ManhattanDist(s.B) }

// Midpoint returns the segment midpoint.
func (s Segment) Midpoint() Point {
	return Point{(s.A.X + s.B.X) / 2, (s.A.Y + s.B.Y) / 2}
}

// Horizontal reports whether the segment is closer to horizontal than to
// vertical (|dx| >= |dy|). WDM placement classifies optical connections by
// dominant orientation.
func (s Segment) Horizontal() bool {
	return math.Abs(s.B.X-s.A.X) >= math.Abs(s.B.Y-s.A.Y)
}

// BBox returns the axis-aligned bounding box of the segment.
func (s Segment) BBox() Rect {
	return Rect{
		Lo: Point{math.Min(s.A.X, s.B.X), math.Min(s.A.Y, s.B.Y)},
		Hi: Point{math.Max(s.A.X, s.B.X), math.Max(s.A.Y, s.B.Y)},
	}
}

// Rect is an axis-aligned rectangle with Lo at the minimum corner and Hi at
// the maximum corner. The zero Rect is the empty rectangle at the origin.
type Rect struct {
	Lo, Hi Point
}

// BBoxOf returns the bounding box of pts. It panics on an empty slice.
func BBoxOf(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: BBoxOf empty point set")
	}
	r := Rect{Lo: pts[0], Hi: pts[0]}
	for _, p := range pts[1:] {
		r = r.Include(p)
	}
	return r
}

// Include returns r grown to contain p.
func (r Rect) Include(p Point) Rect {
	if p.X < r.Lo.X {
		r.Lo.X = p.X
	}
	if p.Y < r.Lo.Y {
		r.Lo.Y = p.Y
	}
	if p.X > r.Hi.X {
		r.Hi.X = p.X
	}
	if p.Y > r.Hi.Y {
		r.Hi.Y = p.Y
	}
	return r
}

// Union returns the smallest rectangle containing both r and q.
func (r Rect) Union(q Rect) Rect {
	return r.Include(q.Lo).Include(q.Hi)
}

// Expand returns r grown by d on every side.
func (r Rect) Expand(d float64) Rect {
	return Rect{Point{r.Lo.X - d, r.Lo.Y - d}, Point{r.Hi.X + d, r.Hi.Y + d}}
}

// Overlaps reports whether r and q intersect (touching counts).
func (r Rect) Overlaps(q Rect) bool {
	return r.Lo.X <= q.Hi.X+Eps && q.Lo.X <= r.Hi.X+Eps &&
		r.Lo.Y <= q.Hi.Y+Eps && q.Lo.Y <= r.Hi.Y+Eps
}

// Contains reports whether p lies in r (boundary counts).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Lo.X-Eps && p.X <= r.Hi.X+Eps &&
		p.Y >= r.Lo.Y-Eps && p.Y <= r.Hi.Y+Eps
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Hi.X - r.Lo.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Hi.Y - r.Lo.Y }

// Center returns the centre point of r.
func (r Rect) Center() Point {
	return Point{(r.Lo.X + r.Hi.X) / 2, (r.Lo.Y + r.Hi.Y) / 2}
}

// cross returns the z-component of (b−a) × (c−a).
func cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// onSegment reports whether point p, known to be collinear with s, lies on s.
func onSegment(s Segment, p Point) bool {
	return math.Min(s.A.X, s.B.X)-Eps <= p.X && p.X <= math.Max(s.A.X, s.B.X)+Eps &&
		math.Min(s.A.Y, s.B.Y)-Eps <= p.Y && p.Y <= math.Max(s.A.Y, s.B.Y)+Eps
}

// SegmentsIntersect reports whether the two segments share at least one
// point, including endpoint touches and collinear overlap.
func SegmentsIntersect(s, t Segment) bool {
	d1 := cross(t.A, t.B, s.A)
	d2 := cross(t.A, t.B, s.B)
	d3 := cross(s.A, s.B, t.A)
	d4 := cross(s.A, s.B, t.B)

	if ((d1 > Eps && d2 < -Eps) || (d1 < -Eps && d2 > Eps)) &&
		((d3 > Eps && d4 < -Eps) || (d3 < -Eps && d4 > Eps)) {
		return true
	}
	switch {
	case math.Abs(d1) <= Eps && onSegment(t, s.A):
		return true
	case math.Abs(d2) <= Eps && onSegment(t, s.B):
		return true
	case math.Abs(d3) <= Eps && onSegment(s, t.A):
		return true
	case math.Abs(d4) <= Eps && onSegment(s, t.B):
		return true
	}
	return false
}

// ProperCrossing reports whether the two segments cross at a single interior
// point of both. Endpoint touches and collinear overlaps are not proper
// crossings: two waveguides joining at a node share a junction, they do not
// cross, and only proper crossings incur the β crossing loss.
func ProperCrossing(s, t Segment) bool {
	d1 := cross(t.A, t.B, s.A)
	d2 := cross(t.A, t.B, s.B)
	d3 := cross(s.A, s.B, t.A)
	d4 := cross(s.A, s.B, t.B)
	return ((d1 > Eps && d2 < -Eps) || (d1 < -Eps && d2 > Eps)) &&
		((d3 > Eps && d4 < -Eps) || (d3 < -Eps && d4 > Eps))
}

// CountCrossings returns the number of proper crossings between the two
// segment sets. It is quadratic in the input sizes; callers prune by
// bounding box before invoking it on large sets.
func CountCrossings(a, b []Segment) int {
	n := 0
	for _, s := range a {
		sb := s.BBox()
		for _, t := range b {
			if !sb.Overlaps(t.BBox()) {
				continue
			}
			if ProperCrossing(s, t) {
				n++
			}
		}
	}
	return n
}

// CrossingsWithSegment returns the number of segments in set that properly
// cross s.
func CrossingsWithSegment(s Segment, set []Segment) int {
	n := 0
	sb := s.BBox()
	for _, t := range set {
		if !sb.Overlaps(t.BBox()) {
			continue
		}
		if ProperCrossing(s, t) {
			n++
		}
	}
	return n
}

// MergeCollinear repeatedly joins segments that share an endpoint and lie
// on the same line into single segments. Routing stages may subdivide edges
// for labelling; the physical waveguide of consecutive same-direction
// optical chunks is one straight guide again after merging.
func MergeCollinear(segs []Segment) []Segment {
	out := append([]Segment(nil), segs...)
	for {
		merged := false
	outer:
		for i := 0; i < len(out); i++ {
			for j := i + 1; j < len(out); j++ {
				if s, ok := joinCollinear(out[i], out[j]); ok {
					out[i] = s
					out[j] = out[len(out)-1]
					out = out[:len(out)-1]
					merged = true
					break outer
				}
			}
		}
		if !merged {
			return out
		}
	}
}

// joinCollinear merges two segments into one if they share an endpoint and
// are collinear with the union spanning both.
func joinCollinear(a, b Segment) (Segment, bool) {
	var shared, aOther, bOther Point
	switch {
	case a.A.Eq(b.A):
		shared, aOther, bOther = a.A, a.B, b.B
	case a.A.Eq(b.B):
		shared, aOther, bOther = a.A, a.B, b.A
	case a.B.Eq(b.A):
		shared, aOther, bOther = a.B, a.A, b.B
	case a.B.Eq(b.B):
		shared, aOther, bOther = a.B, a.A, b.A
	default:
		return Segment{}, false
	}
	if math.Abs(cross(aOther, shared, bOther)) > Eps {
		return Segment{}, false
	}
	// The shared point must lie between the outer ends (a real chain, not
	// two segments folded back on themselves).
	if !onSegment(Segment{A: aOther, B: bOther}, shared) {
		return Segment{}, false
	}
	return Segment{A: aOther, B: bOther}, true
}

// PointSegmentDist returns the Euclidean distance from p to segment s.
func PointSegmentDist(p Point, s Segment) float64 {
	d := s.B.Sub(s.A)
	l2 := d.X*d.X + d.Y*d.Y
	if l2 <= Eps*Eps {
		return p.Dist(s.A)
	}
	t := ((p.X-s.A.X)*d.X + (p.Y-s.A.Y)*d.Y) / l2
	t = math.Max(0, math.Min(1, t))
	return p.Dist(Point{s.A.X + t*d.X, s.A.Y + t*d.Y})
}
