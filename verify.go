package operon

import (
	"fmt"
	"math"
	"sort"

	"operon/internal/geom"
)

// Issue is one design-rule violation found by Verify.
type Issue struct {
	// Rule names the violated check (e.g. "loss-budget", "wdm-capacity").
	Rule string
	// Net is the offending hyper net index, or -1 for global issues.
	Net int
	// Detail describes the violation.
	Detail string
}

// String implements fmt.Stringer.
func (i Issue) String() string {
	if i.Net >= 0 {
		return fmt.Sprintf("%s (net %d): %s", i.Rule, i.Net, i.Detail)
	}
	return fmt.Sprintf("%s: %s", i.Rule, i.Detail)
}

// Verify re-checks a flow result against the design rules, independently of
// the algorithms that produced it:
//
//   - every hyper net has exactly one chosen candidate;
//   - every optical detection path meets the loss budget, including the
//     exact pairwise crossing loss of the other selected candidates;
//   - conversion-site counts are consistent with the candidate's record;
//   - WDM shares cover every connection's bits exactly, never exceed the
//     waveguide capacity, never mix orientations, and respect the dis_u
//     displacement bound;
//   - adjacent same-orientation WDMs respect the dis_l crosstalk spacing.
//
// It returns all violations found (empty = clean). Verify is the
// independent auditor used by tests and `cmd/operon -verify`.
func Verify(res *Result, cfg Config) []Issue {
	var issues []Issue
	if res == nil || len(res.Nets) == 0 {
		return []Issue{{Rule: "result", Net: -1, Detail: "empty result"}}
	}
	if len(res.Selection.Choice) != len(res.Nets) {
		return []Issue{{Rule: "selection", Net: -1, Detail: fmt.Sprintf(
			"choice covers %d of %d nets", len(res.Selection.Choice), len(res.Nets))}}
	}

	// Per-net candidate sanity and loss budget under exact crossing loss.
	for i, j := range res.Selection.Choice {
		if j < 0 || j >= len(res.Nets[i].Cands) {
			issues = append(issues, Issue{Rule: "selection", Net: i,
				Detail: fmt.Sprintf("candidate index %d out of range", j)})
			continue
		}
		cand := res.Nets[i].Cands[j]
		if len(cand.ModSites) != cand.NumMod || len(cand.DetSites) != cand.NumDet {
			issues = append(issues, Issue{Rule: "conversion-sites", Net: i,
				Detail: fmt.Sprintf("%d/%d sites for %d/%d conversions",
					len(cand.ModSites), len(cand.DetSites), cand.NumMod, cand.NumDet)})
		}
		for p, path := range cand.Paths {
			loss := path.FixedLossDB
			for m, n := range res.Selection.Choice {
				if m == i || n < 0 || n >= len(res.Nets[m].Cands) {
					continue // invalid choices are reported separately
				}
				other := res.Nets[m].Cands[n].OpticalSegs
				if len(other) == 0 {
					continue
				}
				loss += cfg.Lib.CrossingLossDB(geom.CountCrossings(path.Segs, other))
			}
			if !cfg.Lib.Detectable(loss) {
				issues = append(issues, Issue{Rule: "loss-budget", Net: i,
					Detail: fmt.Sprintf("path %d: %.2f dB > l_m %.2f dB",
						p, loss, cfg.Lib.MaxLossDB)})
			}
		}
	}

	issues = append(issues, verifyWDM(res, cfg)...)
	return issues
}

// verifyWDM audits the WDM placement and assignment of a result.
func verifyWDM(res *Result, cfg Config) []Issue {
	var issues []Issue
	if len(res.Connections) == 0 {
		return nil
	}
	if len(res.Assignment.Shares) != len(res.Connections) {
		return []Issue{{Rule: "wdm-shares", Net: -1, Detail: fmt.Sprintf(
			"shares cover %d of %d connections",
			len(res.Assignment.Shares), len(res.Connections))}}
	}
	load := make(map[int]int)
	for ci, conn := range res.Connections {
		covered := 0
		for _, sh := range res.Assignment.Shares[ci] {
			if sh.WDM < 0 || sh.WDM >= len(res.Placement.WDMs) {
				issues = append(issues, Issue{Rule: "wdm-shares", Net: conn.Net,
					Detail: fmt.Sprintf("connection %d references WDM %d", ci, sh.WDM)})
				continue
			}
			w := res.Placement.WDMs[sh.WDM]
			if w.Horizontal != conn.Horizontal() {
				issues = append(issues, Issue{Rule: "wdm-orientation", Net: conn.Net,
					Detail: fmt.Sprintf("connection %d assigned across orientations", ci)})
			}
			coord := conn.Seg.Midpoint().Y
			if !conn.Horizontal() {
				coord = conn.Seg.Midpoint().X
			}
			d := math.Abs(coord - w.CoordCM)
			if d > cfg.Lib.AssignMaxDistCM+1e-9 && sh.WDM != res.Placement.InitialAssign[ci] {
				issues = append(issues, Issue{Rule: "wdm-displacement", Net: conn.Net,
					Detail: fmt.Sprintf("connection %d displaced %.4f cm > dis_u", ci, d)})
			}
			covered += sh.Bits
			load[sh.WDM] += sh.Bits
		}
		if covered != conn.Bits {
			issues = append(issues, Issue{Rule: "wdm-coverage", Net: conn.Net,
				Detail: fmt.Sprintf("connection %d: %d of %d bits assigned",
					ci, covered, conn.Bits)})
		}
	}
	for w, l := range load {
		if l > cfg.Lib.WDMCapacity {
			issues = append(issues, Issue{Rule: "wdm-capacity", Net: -1,
				Detail: fmt.Sprintf("WDM %d carries %d > capacity %d",
					w, l, cfg.Lib.WDMCapacity)})
		}
	}
	// dis_l spacing between loaded same-orientation WDMs.
	for _, horizontal := range []bool{true, false} {
		var coords []float64
		for w := range load {
			if res.Placement.WDMs[w].Horizontal == horizontal {
				coords = append(coords, res.Placement.WDMs[w].CoordCM)
			}
		}
		sort.Float64s(coords)
		for k := 1; k < len(coords); k++ {
			if coords[k]-coords[k-1] < cfg.Lib.CrosstalkMinDistCM-1e-12 {
				issues = append(issues, Issue{Rule: "wdm-spacing", Net: -1,
					Detail: fmt.Sprintf("WDMs at %.4f and %.4f closer than dis_l",
						coords[k-1], coords[k])})
			}
		}
	}
	return issues
}
