package operon

import (
	"math"
	"testing"

	"operon/internal/codesign"
	"operon/internal/geom"
	"operon/internal/optics"
	"operon/internal/steiner"
)

func mkCand(power, loss float64) codesign.Candidate {
	return codesign.Candidate{PowerMW: power, MaxFixedLossDB: loss}
}

func TestThinCandidatesKeepsAllWhenSmall(t *testing.T) {
	cands := []codesign.Candidate{mkCand(1, 5), mkCand(2, 3)}
	if got := thinCandidates(cands, 4); len(got) != 2 {
		t.Fatalf("thinned to %d, want 2", len(got))
	}
	if got := thinCandidates(cands, 0); len(got) != 2 {
		t.Fatalf("max 0 should keep all, got %d", len(got))
	}
}

func TestThinCandidatesDropsDominated(t *testing.T) {
	cands := []codesign.Candidate{
		mkCand(1, 10), // cheapest
		mkCand(2, 9),
		mkCand(2.5, 9.5), // dominated by (2,9)
		mkCand(3, 6),
		mkCand(4, 4),
		mkCand(5, 2), // lowest loss
	}
	got := thinCandidates(cands, 3)
	if len(got) != 3 {
		t.Fatalf("thinned to %d, want 3", len(got))
	}
	// Extremes survive: the cheapest and the lowest-loss candidate.
	if got[0].PowerMW != 1 {
		t.Errorf("cheapest dropped: %+v", got[0])
	}
	if got[len(got)-1].MaxFixedLossDB != 2 {
		t.Errorf("lowest-loss dropped: %+v", got[len(got)-1])
	}
	for _, c := range got {
		if c.PowerMW == 2.5 {
			t.Error("dominated candidate survived")
		}
	}
}

func TestThinCandidatesMonotone(t *testing.T) {
	// Output is sorted by power ascending with loss descending (a front).
	cands := []codesign.Candidate{
		mkCand(5, 1), mkCand(1, 9), mkCand(3, 4), mkCand(2, 7), mkCand(4, 2),
	}
	got := thinCandidates(cands, 4)
	for i := 1; i < len(got); i++ {
		if got[i].PowerMW < got[i-1].PowerMW {
			t.Fatalf("power not ascending: %+v", got)
		}
		if got[i].MaxFixedLossDB > got[i-1].MaxFixedLossDB {
			t.Fatalf("loss not descending: %+v", got)
		}
	}
}

func TestLossPressed(t *testing.T) {
	lib := optics.DefaultLibrary()
	short := steiner.MST([]geom.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}}, steiner.Euclidean)
	if lossPressed(short, nil, lib, 1) {
		t.Error("short uncrossed net reported loss-pressed")
	}
	// A long net with many crossings approaches the budget.
	long := steiner.MST([]geom.Point{{X: 0, Y: 0}, {X: 4, Y: 0}}, steiner.Euclidean)
	var env []geom.Segment
	for i := 0; i < 25; i++ {
		x := 0.1 + float64(i)*0.15
		env = append(env, geom.Segment{A: geom.Point{X: x, Y: -1}, B: geom.Point{X: x, Y: 1}})
	}
	if !lossPressed(long, env, lib, 1) {
		t.Error("long heavily-crossed net not reported loss-pressed")
	}
	// High fanout alone adds splitting pressure.
	if !lossPressed(long, nil, lib, 20) {
		t.Error("high-fanout long net not loss-pressed")
	}
}

func TestLossPressedThresholdMath(t *testing.T) {
	lib := optics.DefaultLibrary()
	// Exactly at 70% of the budget: 0.7·20 dB = 14 dB → a 9.34 cm
	// uncrossed 2-pin run sits barely above it (α = 1.5 dB/cm).
	length := 0.7*lib.MaxLossDB/lib.AlphaDBPerCM + 0.01
	tr := steiner.MST([]geom.Point{{X: 0, Y: 0}, {X: length, Y: 0}}, steiner.Euclidean)
	if !lossPressed(tr, nil, lib, 1) {
		t.Error("net just above the 70% threshold not pressed")
	}
	tr = steiner.MST([]geom.Point{{X: 0, Y: 0}, {X: length - 0.02, Y: 0}}, steiner.Euclidean)
	if lossPressed(tr, nil, lib, 1) {
		t.Error("net just below the 70% threshold pressed")
	}
}

func TestThinCandidatesProperty(t *testing.T) {
	// Thinning never loses the minimum-power candidate and never returns
	// more than max.
	for n := 1; n < 30; n++ {
		var cands []codesign.Candidate
		minPow := math.Inf(1)
		for i := 0; i < n; i++ {
			p := float64((i*7)%13) + 1
			l := float64((i*5)%11) + 1
			cands = append(cands, mkCand(p, l))
			if p < minPow {
				minPow = p
			}
		}
		for _, max := range []int{1, 2, 3, 5} {
			got := thinCandidates(append([]codesign.Candidate(nil), cands...), max)
			if len(got) > max {
				t.Fatalf("n=%d max=%d: %d survived", n, max, len(got))
			}
			if len(got) == 0 {
				t.Fatalf("n=%d max=%d: everything dropped", n, max)
			}
			if got[0].PowerMW != minPow {
				t.Fatalf("n=%d max=%d: min-power candidate lost", n, max)
			}
		}
	}
}
