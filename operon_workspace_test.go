package operon

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"operon/internal/obs"
)

// TestWorkspaceReuseBitIdentical is the correctness contract of the
// workspace layer: repeated RunContextWith solves sharing one Workspace —
// across different designs and worker counts — must stay bit-identical to
// fresh-workspace runs. Any cross-worker scratch aliasing or state leaking
// from one run into the next shows up either here (as a result diff) or
// under the race detector, which this test is built to run beneath (the
// root package is part of `make race`).
func TestWorkspaceReuseBitIdentical(t *testing.T) {
	designs := determinismCases(t)
	before := runtime.NumGoroutine()

	// Reference results: fresh workspace, one worker.
	refs := make([]*Result, len(designs))
	for i, d := range designs {
		cfg := DefaultConfig()
		cfg.Workers = 1
		res, err := RunContextWith(context.Background(), d, cfg, nil)
		if err != nil {
			t.Fatalf("%s reference: %v", d.Name, err)
		}
		refs[i] = res
	}

	// One shared workspace serves every subsequent run, interleaving
	// designs and worker counts so slot scratch is reused across both.
	ws := NewWorkspace()
	for round := 0; round < 3; round++ {
		for _, workers := range []int{1, 4, 8} {
			for i, d := range designs {
				cfg := DefaultConfig()
				cfg.Workers = workers
				res, err := RunContextWith(context.Background(), d, cfg, ws)
				if err != nil {
					t.Fatalf("%s round=%d workers=%d: %v", d.Name, round, workers, err)
				}
				ref := refs[i]
				if res.PowerMW != ref.PowerMW {
					t.Errorf("%s round=%d workers=%d: PowerMW %v, want %v",
						d.Name, round, workers, res.PowerMW, ref.PowerMW)
				}
				if !reflect.DeepEqual(res.Selection, ref.Selection) {
					t.Errorf("%s round=%d workers=%d: Selection differs from fresh-workspace run",
						d.Name, round, workers)
				}
				if !reflect.DeepEqual(res.Connections, ref.Connections) {
					t.Errorf("%s round=%d workers=%d: optical connections differ",
						d.Name, round, workers)
				}
				if !reflect.DeepEqual(res.Assignment, ref.Assignment) {
					t.Errorf("%s round=%d workers=%d: WDM assignment differs",
						d.Name, round, workers)
				}
				if res.WDMStats != ref.WDMStats {
					t.Errorf("%s round=%d workers=%d: WDMStats %+v, want %+v",
						d.Name, round, workers, res.WDMStats, ref.WDMStats)
				}
			}
		}
	}
	checkNoGoroutineLeak(t, before)
}

// TestWorkspaceReuseCounters pins the observability contract: a second run
// on the same workspace must reuse every worker scratch it touches — the
// ws.worker.create counter stays flat while ws.worker.reuse grows.
func TestWorkspaceReuseCounters(t *testing.T) {
	d := determinismCases(t)[0]
	cfg := DefaultConfig()
	cfg.Workers = 2
	cfg.Obs = obs.New(nil)

	ws := NewWorkspace()
	if _, err := RunContextWith(context.Background(), d, cfg, ws); err != nil {
		t.Fatal(err)
	}
	created := counterValue(t, cfg.Obs, "ws.worker.create")
	if created == 0 {
		t.Fatal("first run created no worker scratch — grabScratch is not wired in")
	}
	if _, err := RunContextWith(context.Background(), d, cfg, ws); err != nil {
		t.Fatal(err)
	}
	if c := counterValue(t, cfg.Obs, "ws.worker.create"); c != created {
		t.Errorf("second run on the same workspace created %d new scratches, want 0", c-created)
	}
	if r := counterValue(t, cfg.Obs, "ws.worker.reuse"); r == 0 {
		t.Error("second run reported no scratch reuse")
	}
}

// counterValue reads one counter from a tracer snapshot (0 when absent).
func counterValue(t *testing.T, tr *obs.Tracer, name string) int64 {
	t.Helper()
	for _, c := range tr.Snapshot() {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}
