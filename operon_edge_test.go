package operon

import (
	"errors"
	"math"
	"testing"

	"operon/internal/geom"
	"operon/internal/parallel"
	"operon/internal/signal"
)

func TestWorkerPoolParallelMatchesSerial(t *testing.T) {
	// The shared worker pool must produce the same results as serial
	// execution (results are written by index, never by completion order).
	n := 100
	serial := make([]int, n)
	concurrent := make([]int, n)
	if err := parallel.ForEach(n, 1, func(i int) error {
		serial[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := parallel.ForEach(n, 8, func(i int) error {
		concurrent[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != concurrent[i] {
			t.Fatalf("index %d: %d vs %d", i, serial[i], concurrent[i])
		}
	}
}

func TestWorkerPoolPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := parallel.ForEach(50, workers, func(i int) error {
			if i == 37 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Errorf("workers=%d: error %v, want sentinel", workers, err)
		}
	}
}

func TestWorkerPoolZeroItems(t *testing.T) {
	called := false
	if err := parallel.ForEach(0, 4, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("callback invoked for zero items")
	}
}

func TestRunWithExplicitWorkers(t *testing.T) {
	d := smallDesign(t)
	cfg := DefaultConfig()
	base, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(base.PowerMW-par.PowerMW) > 1e-9 {
		t.Fatalf("parallel candidate generation changed the result: %v vs %v",
			base.PowerMW, par.PowerMW)
	}
}

func TestRunSingleBitDesign(t *testing.T) {
	// Degenerate: one group, one bit, one sink.
	d := signal.Design{
		Name: "onebit",
		Die:  geom.Rect{Hi: geom.Point{X: 4, Y: 4}},
		Groups: []signal.Group{{
			Name: "g",
			Bits: []signal.Bit{{
				Driver: geom.Point{X: 0.5, Y: 0.5},
				Sinks:  []geom.Point{{X: 3, Y: 3}},
			}},
		}},
	}
	res, err := Run(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nets) != 1 {
		t.Fatalf("nets = %d", len(res.Nets))
	}
	if issues := Verify(res, DefaultConfig()); len(issues) != 0 {
		t.Fatalf("DRC issues on one-bit design: %v", issues)
	}
}

func TestRunAllLocalDesign(t *testing.T) {
	// Every bundle below the crossover: the whole design should route
	// electrically and skip the WDM stage gracefully.
	d := signal.Design{
		Name: "alllocal",
		Die:  geom.Rect{Hi: geom.Point{X: 4, Y: 4}},
	}
	for g := 0; g < 5; g++ {
		grp := signal.Group{Name: "g"}
		base := geom.Point{X: 0.5 + float64(g)*0.7, Y: 1}
		for b := 0; b < 4; b++ {
			off := float64(b) * 0.002
			grp.Bits = append(grp.Bits, signal.Bit{
				Driver: geom.Point{X: base.X + off, Y: base.Y},
				Sinks:  []geom.Point{{X: base.X + off + 0.05, Y: base.Y}},
			})
		}
		d.Groups = append(d.Groups, grp)
	}
	res, err := Run(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Nets {
		if res.Classify(i) != RouteElectrical {
			t.Errorf("local net %d routed %v", i, res.Classify(i))
		}
	}
	if len(res.Connections) != 0 || res.WDMStats.InitialWDMs != 0 {
		t.Error("all-electrical design produced WDM content")
	}
	if issues := Verify(res, DefaultConfig()); len(issues) != 0 {
		t.Fatalf("DRC issues: %v", issues)
	}
}

func TestRunTinyLossBudget(t *testing.T) {
	// An unroutable optical layer (budget ~0) must degrade to electrical
	// everywhere, never error.
	d := smallDesign(t)
	cfg := DefaultConfig()
	cfg.Lib.MaxLossDB = 0.05
	res, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Nets {
		if res.Classify(i) != RouteElectrical {
			t.Fatalf("net %d optical under a 0.05 dB budget", i)
		}
	}
	if issues := Verify(res, cfg); len(issues) != 0 {
		t.Fatalf("DRC issues: %v", issues)
	}
}
