package operon

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math"

	"operon/internal/geom"
	"operon/internal/signal"
)

// Fingerprint returns a stable 32-byte content address of a solve instance:
// two (design, cfg) pairs hash equal exactly when RunContext would produce
// the same Result for both (given the same, sufficiently large time budget).
// It is the key of the serving layer's request coalescing and result cache —
// identical instances are detected by content, never by request identity, so
// the cache needs no invalidation.
//
// Every field that can steer the flow participates; fields that only choose
// HOW the identical result is computed do not. The exact split:
//
//	Design (all of it is semantic — every slice is a positional input to the
//	seeded clustering, so order matters by construction, and no maps exist
//	to introduce encoding-order artifacts):
//	  Name                      echoed into Result.Design
//	  Die                       the chip outline
//	  Groups[i].Name            echoed into hyper nets
//	  Groups[i].Bits[j]         driver and sink coordinates, in order
//
//	Config — semantic (participate):
//	  Lib (all fields)          loss/power library; changes every evaluation
//	  Elec (all fields)         electrical power model
//	  PinMergeThresholdCM       §3.1.2 agglomeration radius
//	  MaxBaselines              baseline topologies per hyper net
//	  SubdivideCM               edge-subdivision threshold
//	  MaxCandidates             co-design DP option cap
//	  MaxCandidatesPerNet       merged candidate cap
//	  Mode                      selection algorithm
//	  ILPTimeLimit, ILPMaxNodes exact-solver budgets (bound the incumbent)
//	  LR.MaxIters, LR.ConvergeRatio, LR.StepScale
//	                            Lagrangian trajectory knobs
//	  LR.WarmStart              replaces the multiplier initialisation
//	  LR.ReturnLambda           adds Result.LR.Lambda
//	  Seed                      drives the deterministic clustering
//	  SkipWDM                   drops the whole §4 stage
//
//	Config — non-semantic (excluded; results are bit-identical across them):
//	  Workers, LR.Workers       worker-pool sizes (determinism contract)
//	  Obs, LR.Obs               telemetry sinks
//	  LR.Ctx                    execution context (a budget, not content)
//
// fingerprint_test.go walks Config and LROptions by reflection and fails
// when a new field is added without being classified above, so the split
// cannot silently rot.
//
// The encoding is canonical: a version tag first, every variable-length
// value length-prefixed, floats as IEEE-754 bit patterns, so the hash is
// stable across processes, architectures, and releases that keep the tag.
func Fingerprint(d signal.Design, cfg Config) [32]byte {
	h := fpHasher{h: sha256.New()}
	h.str("operon-fp-v1")

	// Design.
	h.str(d.Name)
	h.rect(d.Die)
	h.num(int64(len(d.Groups)))
	for _, g := range d.Groups {
		h.str(g.Name)
		h.num(int64(len(g.Bits)))
		for _, b := range g.Bits {
			h.pt(b.Driver)
			h.num(int64(len(b.Sinks)))
			for _, p := range b.Sinks {
				h.pt(p)
			}
		}
	}

	// Config: optical library.
	h.f64(cfg.Lib.AlphaDBPerCM)
	h.f64(cfg.Lib.BetaDBPerCrossing)
	h.f64(cfg.Lib.ModulatorPJPerBit)
	h.f64(cfg.Lib.DetectorPJPerBit)
	h.f64(cfg.Lib.BitRateGHz)
	h.num(int64(cfg.Lib.WDMCapacity))
	h.f64(cfg.Lib.MaxLossDB)
	h.f64(cfg.Lib.CrosstalkMinDistCM)
	h.f64(cfg.Lib.AssignMaxDistCM)

	// Config: electrical model.
	h.f64(cfg.Elec.SwitchingFactor)
	h.f64(cfg.Elec.FrequencyGHz)
	h.f64(cfg.Elec.VoltageV)
	h.f64(cfg.Elec.UnitCapPFPerCM)

	// Config: flow knobs.
	h.f64(cfg.PinMergeThresholdCM)
	h.num(int64(cfg.MaxBaselines))
	h.f64(cfg.SubdivideCM)
	h.num(int64(cfg.MaxCandidates))
	h.num(int64(cfg.MaxCandidatesPerNet))
	h.num(int64(cfg.Mode))
	h.num(int64(cfg.ILPTimeLimit))
	h.num(int64(cfg.ILPMaxNodes))
	h.num(cfg.Seed)
	h.bool(cfg.SkipWDM)

	// Config: Lagrangian trajectory knobs.
	h.num(int64(cfg.LR.MaxIters))
	h.f64(cfg.LR.ConvergeRatio)
	h.f64(cfg.LR.StepScale)
	h.num(int64(len(cfg.LR.WarmStart)))
	for _, v := range cfg.LR.WarmStart {
		h.f64(v)
	}
	h.bool(cfg.LR.ReturnLambda)

	var out [32]byte
	h.h.Sum(out[:0])
	return out
}

// fpHasher streams canonically encoded values into a hash. All multi-byte
// values are little-endian fixed-width, all variable-length values are
// length-prefixed, so no two distinct field sequences share an encoding.
type fpHasher struct {
	h   hash.Hash
	buf [8]byte
}

func (f *fpHasher) num(v int64) {
	binary.LittleEndian.PutUint64(f.buf[:], uint64(v))
	f.h.Write(f.buf[:])
}

func (f *fpHasher) f64(v float64) {
	binary.LittleEndian.PutUint64(f.buf[:], math.Float64bits(v))
	f.h.Write(f.buf[:])
}

func (f *fpHasher) bool(v bool) {
	if v {
		f.num(1)
	} else {
		f.num(0)
	}
}

func (f *fpHasher) str(s string) {
	f.num(int64(len(s)))
	f.h.Write([]byte(s))
}

func (f *fpHasher) pt(p geom.Point) { f.f64(p.X); f.f64(p.Y) }

func (f *fpHasher) rect(r geom.Rect) { f.pt(r.Lo); f.pt(r.Hi) }
