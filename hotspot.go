package operon

import (
	"fmt"

	"operon/internal/geom"
	"operon/internal/power"
)

// HotspotMaps holds the per-layer power-density grids of the paper's
// Fig. 9: the optical layer carries the EO/OE conversion power at the
// modulator and detector sites; the electrical layer carries the dynamic
// wire power distributed along the copper routes.
type HotspotMaps struct {
	// Optical is the conversion-power grid (modulators and detectors).
	Optical *power.Grid
	// Electrical is the wire-power grid (dynamic power along copper routes).
	Electrical *power.Grid
}

// Hotspots bins the selected routes of a result onto rows×cols grids over
// the die.
func Hotspots(res *Result, die geom.Rect, rows, cols int, cfg Config) (HotspotMaps, error) {
	if res == nil || len(res.Nets) == 0 || len(res.Selection.Choice) != len(res.Nets) {
		return HotspotMaps{}, fmt.Errorf("operon: result has no complete selection")
	}
	opt, err := power.NewGrid(die, rows, cols)
	if err != nil {
		return HotspotMaps{}, err
	}
	elec, err := power.NewGrid(die, rows, cols)
	if err != nil {
		return HotspotMaps{}, err
	}
	modP := cfg.Lib.ConversionPowerMW(1, 0)
	detP := cfg.Lib.ConversionPowerMW(0, 1)
	for i, j := range res.Selection.Choice {
		cand := res.Nets[i].Cands[j]
		bits := float64(res.Nets[i].Bits)
		for _, p := range cand.ModSites {
			opt.AddPoint(p, modP*bits)
		}
		for _, p := range cand.DetSites {
			opt.AddPoint(p, detP*bits)
		}
		for _, s := range cand.ElecSegs {
			elec.AddSegment(s, cfg.Elec.BusPowerMW(s.ManhattanLength(), res.Nets[i].Bits))
		}
	}
	return HotspotMaps{Optical: opt, Electrical: elec}, nil
}
