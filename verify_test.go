package operon

import (
	"strings"
	"testing"

	"operon/internal/benchgen"
)

func verifyDesign(t *testing.T) *Result {
	t.Helper()
	d, err := benchgen.Generate(benchgen.Spec{
		Name: "drc", DieCM: 4, Groups: 20, BitsPerGroup: 8, BitsJitter: 2,
		MinSinkClusters: 1, MaxSinkClusters: 2, LocalFraction: 0.2,
		LocalSpanCM: 0.2, GlobalSpanCM: 1.2, RegionSpreadCM: 0.02,
		LanePitchCM: 0.2, Seed: 55,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestVerifyCleanResult(t *testing.T) {
	res := verifyDesign(t)
	if issues := Verify(res, DefaultConfig()); len(issues) != 0 {
		for _, is := range issues {
			t.Errorf("unexpected DRC issue: %v", is)
		}
	}
}

func TestVerifyAllFlowsClean(t *testing.T) {
	// Every flow — both baselines and all three selection modes — must
	// produce DRC-clean results on all five benchmarks' smaller cousins.
	d, err := benchgen.Generate(benchgen.Spec{
		Name: "drc-all", DieCM: 4, Groups: 30, BitsPerGroup: 4, BitsJitter: 1,
		MinSinkClusters: 1, MaxSinkClusters: 1, LocalFraction: 0.1,
		LocalSpanCM: 0.2, GlobalSpanCM: 1.1, RegionSpreadCM: 0.02,
		LanePitchCM: 0.2, Seed: 66,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	for _, mode := range []Mode{ModeLR, ModeGreedy} {
		c := cfg
		c.Mode = mode
		res, err := Run(d, c)
		if err != nil {
			t.Fatal(err)
		}
		if issues := Verify(res, c); len(issues) != 0 {
			t.Errorf("%v: %d DRC issues, first: %v", mode, len(issues), issues[0])
		}
	}
	glow, err := RunOptical(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if issues := Verify(glow, cfg); len(issues) != 0 {
		t.Errorf("optical baseline: %d DRC issues, first: %v", len(issues), issues[0])
	}
	elec, err := RunElectrical(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if issues := Verify(elec, cfg); len(issues) != 0 {
		t.Errorf("electrical baseline: %d DRC issues, first: %v", len(issues), issues[0])
	}
}

func TestVerifyCatchesEmptyResult(t *testing.T) {
	if issues := Verify(&Result{}, DefaultConfig()); len(issues) == 0 {
		t.Error("empty result passed DRC")
	}
	if issues := Verify(nil, DefaultConfig()); len(issues) == 0 {
		t.Error("nil result passed DRC")
	}
}

func TestVerifyCatchesCorruptedSelection(t *testing.T) {
	res := verifyDesign(t)
	res.Selection.Choice[0] = 99
	issues := Verify(res, DefaultConfig())
	if len(issues) == 0 {
		t.Fatal("out-of-range choice passed DRC")
	}
	if issues[0].Rule != "selection" {
		t.Errorf("rule = %q, want selection", issues[0].Rule)
	}
}

func TestVerifyCatchesBudgetTampering(t *testing.T) {
	res := verifyDesign(t)
	// Shrinking the budget after routing must surface loss violations for
	// any result with optical content.
	cfg := DefaultConfig()
	cfg.Lib.MaxLossDB = 0.01
	issues := Verify(res, cfg)
	found := false
	for _, is := range issues {
		if is.Rule == "loss-budget" {
			found = true
			if !strings.Contains(is.Detail, "dB") {
				t.Errorf("loss detail malformed: %v", is)
			}
		}
	}
	if !found && len(res.Connections) > 0 {
		t.Error("tiny budget produced no loss-budget issues")
	}
}

func TestVerifyCatchesOverloadedWDM(t *testing.T) {
	res := verifyDesign(t)
	if len(res.Connections) == 0 {
		t.Skip("no optical connections")
	}
	// Corrupt a share to exceed capacity.
	for ci := range res.Assignment.Shares {
		if len(res.Assignment.Shares[ci]) > 0 {
			res.Assignment.Shares[ci][0].Bits += DefaultConfig().Lib.WDMCapacity
			break
		}
	}
	issues := Verify(res, DefaultConfig())
	var rules []string
	for _, is := range issues {
		rules = append(rules, is.Rule)
	}
	joined := strings.Join(rules, ",")
	if !strings.Contains(joined, "wdm-capacity") && !strings.Contains(joined, "wdm-coverage") {
		t.Errorf("corrupted shares passed DRC: %v", rules)
	}
}

func TestIssueString(t *testing.T) {
	global := Issue{Rule: "wdm-spacing", Net: -1, Detail: "too close"}
	if !strings.HasPrefix(global.String(), "wdm-spacing:") {
		t.Errorf("global issue string: %q", global.String())
	}
	local := Issue{Rule: "loss-budget", Net: 3, Detail: "over"}
	if !strings.Contains(local.String(), "net 3") {
		t.Errorf("net issue string: %q", local.String())
	}
}
