package operon_test

import (
	"fmt"

	operon "operon"
	"operon/internal/benchgen"
	"operon/internal/geom"
	"operon/internal/signal"
)

// ExampleRun routes a hand-built two-bus design and reports deterministic
// structural facts about the solution.
func ExampleRun() {
	design := signal.Design{
		Name: "example",
		Die:  geom.Rect{Hi: geom.Point{X: 4, Y: 4}},
	}
	// A 16-bit global bus (optical territory) and a 4-bit local bundle
	// (electrical territory).
	bus := func(name string, from, to geom.Point, bits int) signal.Group {
		g := signal.Group{Name: name}
		for b := 0; b < bits; b++ {
			off := float64(b) * 0.001
			g.Bits = append(g.Bits, signal.Bit{
				Driver: geom.Point{X: from.X + off, Y: from.Y},
				Sinks:  []geom.Point{{X: to.X + off, Y: to.Y}},
			})
		}
		return g
	}
	design.Groups = append(design.Groups,
		bus("global", geom.Point{X: 0.5, Y: 2}, geom.Point{X: 3.5, Y: 2}, 16),
		bus("local", geom.Point{X: 1, Y: 1}, geom.Point{X: 1.05, Y: 1}, 4),
	)

	res, err := operon.Run(design, operon.DefaultConfig())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	optical := 0
	for i, j := range res.Selection.Choice {
		if !res.Nets[i].Cands[j].AllElectrical {
			optical++
		}
	}
	fmt.Printf("hyper nets: %d\n", len(res.Nets))
	fmt.Printf("optical routes: %d\n", optical)
	fmt.Printf("violations: %d\n", res.Selection.Violations)
	fmt.Printf("drc issues: %d\n", len(operon.Verify(res, operon.DefaultConfig())))
	// Output:
	// hyper nets: 2
	// optical routes: 1
	// violations: 0
	// drc issues: 0
}

// ExampleRunElectrical contrasts the published baselines on a built-in
// benchmark.
func ExampleRunElectrical() {
	spec, _ := benchgen.SpecByName("I3")
	design, _ := benchgen.Generate(spec)
	cfg := operon.DefaultConfig()
	elec, err := operon.RunElectrical(design, cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	glow, err := operon.RunOptical(design, cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("electrical costs more than optical: %v\n", elec.PowerMW > 2*glow.PowerMW)
	// Output:
	// electrical costs more than optical: true
}
